//! Derive macros for the vendored mini-serde.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; the item is parsed directly from the `proc_macro` token
//! stream. Only the shapes this workspace derives are supported: plain
//! (non-generic) structs with named fields, tuple/unit structs, and enums
//! whose variants are unit, newtype, tuple, or struct-shaped. Generated
//! code mirrors real serde/serde_json's externally-tagged encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

use std::fmt::Write as _;

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize` (the vendored trait) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the vendored trait) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ----- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i, "struct/enum keyword");
    let name = expect_ident(&toks, &mut i, "type name");
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("mini-serde derive: generic type `{name}` is not supported");
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Fields::Unit),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("mini-serde derive: expected enum body, got {other:?}"),
        },
        other => panic!("mini-serde derive: unsupported item kind `{other}`"),
    };
    Item { name, kind }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("mini-serde derive: expected {what}, got {other:?}"),
    }
}

/// Advances past one type (or discriminant expression), stopping at a
/// top-level comma. Tracks `<...>` nesting; a `>` that closes `->` arrows
/// is recognised by the preceding joint `-`.
fn skip_until_top_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i64;
    let mut prev_joint_dash = false;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    *i += 1; // consume the comma
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_joint_dash {
                    angle_depth -= 1;
                }
                prev_joint_dash =
                    c == '-' && p.spacing() == proc_macro::Spacing::Joint;
            }
            _ => prev_joint_dash = false,
        }
        *i += 1;
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "field name");
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("mini-serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_top_comma(&toks, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_until_top_comma(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "variant name");
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        skip_until_top_comma(&toks, &mut i);
        variants.push((name, fields));
    }
    variants
}

// ----- codegen --------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Kind::Struct(Fields::Named(fields)) => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f})),"
                );
            }
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        Kind::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_content(&self.0)".to_string()
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let mut items = String::new();
            for idx in 0..*n {
                let _ = write!(items, "::serde::Serialize::to_content(&self.{idx}),");
            }
            format!("::serde::Content::Seq(::std::vec![{items}])")
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\")),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{v}(_f0) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_content(_f0))]),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("_f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{v}({}) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Content::Seq(::std::vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        );
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(",");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Content::Map(::std::vec![{}]))]),",
                            entries.join(",")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => {
            format!("let _ = c; ::std::result::Result::Ok({name})")
        }
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_content(::serde::field(c, \"{f}\")?)?")
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(",")
            )
        }
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let gets: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&_items[{k}])?"))
                .collect();
            format!(
                "let _items = c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", c))?;\n\
                 if _items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                 \"expected {n} elements for {name}, got {{}}\", _items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                gets.join(",")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            keyed_arms,
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_content(_v)?)),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&_items[{k}])?"))
                            .collect();
                        let _ = write!(
                            keyed_arms,
                            "\"{v}\" => {{\n\
                             let _items = _v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", _v))?;\n\
                             if _items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                             \"expected {n} elements for {name}::{v}, got {{}}\", _items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                             }},",
                            gets.join(",")
                        );
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(::serde::field(_v, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            keyed_arms,
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(",")
                        );
                    }
                }
            }
            format!(
                "match c {{\n\
                 ::serde::Content::Str(_s) => match _s.as_str() {{\n\
                 {unit_arms}\n\
                 _other => ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                 \"unknown unit variant `{{}}` for {name}\", _other))),\n\
                 }},\n\
                 ::serde::Content::Map(_entries) if _entries.len() == 1 => {{\n\
                 let (_k, _v) = &_entries[0];\n\
                 match _k.as_str() {{\n\
                 {keyed_arms}\n\
                 _other => ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                 \"unknown variant `{{}}` for {name}\", _other))),\n\
                 }}\n\
                 }},\n\
                 _other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", _other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
