//! End-to-end pipeline tests through the user surface: generate data, save
//! and reload it, compile DML-like scripts, run them, and check property-
//! style invariants across the whole stack.

use std::sync::Arc;

use fuseme::prelude::*;
use fuseme::session::Session;
use fuseme_matrix::io::{read_matrix, write_matrix};
use proptest::prelude::*;

fn session() -> Session {
    let mut cc = ClusterConfig::test_small();
    cc.mem_per_task = 256 << 20;
    Session::new(Engine::fuseme(cc))
}

#[test]
fn save_load_run_roundtrip() {
    let m = gen::sparse_uniform(64, 64, 16, 0.1, 1.0, 2.0, 9).unwrap();
    let mut buf = Vec::new();
    write_matrix(&mut buf, &m).unwrap();
    let loaded = read_matrix(&mut buf.as_slice()).unwrap();
    assert_eq!(m.to_dense_vec(), loaded.to_dense_vec());

    let mut s = session();
    s.bind("X", loaded);
    let report = s.run_script("o = rowSums(X * X)").unwrap();
    let direct: f64 = m.to_dense_vec().iter().map(|v| v * v).sum();
    let total: f64 = report.outputs[0].to_dense_vec().iter().sum();
    assert!((total - direct).abs() < 1e-9 * direct.max(1.0));
}

#[test]
fn compile_errors_are_user_readable() {
    let s = session();
    for (script, needle) in [
        ("o = X %*%", "expected an expression"),
        ("o = foo(X)", "unknown"),
        ("o = Y + 1", "Y"),
        ("= 3", "statement"),
        ("o = 2 + 3", "scalar"),
    ] {
        let err = s.compile_script(script).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.to_lowercase().contains(&needle.to_lowercase()),
            "script `{script}`: message `{msg}` missing `{needle}`"
        );
    }
}

#[test]
fn algebraic_identities_hold_end_to_end() {
    let mut s = session();
    s.gen_dense("A", 40, 24, 8, 1).unwrap();
    s.gen_dense("B", 24, 32, 8, 2).unwrap();

    // (A B)ᵀ == Bᵀ Aᵀ
    let lhs = s.run_script("o = t(A %*% B)").unwrap();
    let rhs = s.run_script("o = t(B) %*% t(A)").unwrap();
    assert!(lhs.outputs[0].approx_eq(&rhs.outputs[0], 1e-9));

    // sum(A) == sum(rowSums(A)) == sum(colSums(A))
    let a = s.run_script("o = sum(A)").unwrap().outputs[0]
        .get(0, 0)
        .unwrap();
    let b = s.run_script("o = sum(rowSums(A))").unwrap().outputs[0]
        .get(0, 0)
        .unwrap();
    let c = s.run_script("o = sum(colSums(A))").unwrap().outputs[0]
        .get(0, 0)
        .unwrap();
    assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    assert!((a - c).abs() < 1e-9 * a.abs().max(1.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Distributed execution equals the reference interpreter for random
    /// shapes, densities, and seeds — the whole stack, property-tested.
    #[test]
    fn distributed_equals_reference(
        rows in 1usize..40,
        cols in 1usize..40,
        k in 1usize..24,
        bs in 2usize..9,
        density in 0.0f64..0.6,
        seed in 0u64..1000,
    ) {
        let x = gen::sparse_uniform(rows, cols, bs, density, 0.5, 2.0, seed).unwrap();
        let u = gen::dense_uniform(rows, k, bs, 0.1, 1.0, seed + 1).unwrap();
        let v = gen::dense_uniform(cols, k, bs, 0.1, 1.0, seed + 2).unwrap();
        let mut s = session();
        s.bind("X", x);
        s.bind("U", u);
        s.bind("V", v);
        let script = "o = X * log(U %*% t(V) + 0.5)";
        let dag = s.compile_script(script).unwrap();
        let reference = fuseme_plan::evaluate(&dag, &s.bindings()).unwrap();
        let report = s.run_script(script).unwrap();
        prop_assert!(report.outputs[0].approx_eq(reference[0].as_matrix().unwrap(), 1e-9));
    }

    /// The (P,Q,R) optimizer never returns parameters that blow the memory
    /// budget when a feasible point exists, for random query sizes.
    #[test]
    fn optimizer_respects_budget(
        i in 2usize..20,
        j in 2usize..20,
        k in 1usize..8,
        mem_kb in 64u64..4096,
    ) {
        use fuseme_fusion::cost::CostModel;
        use fuseme_fusion::optimizer::optimize;
        use fuseme_fusion::space::SpaceTree;
        let bs = 8;
        let mut b = DagBuilder::new();
        let x = b.input("X", MatrixMeta::sparse(i * bs, j * bs, bs, 0.05));
        let u = b.input("U", MatrixMeta::dense(i * bs, k * bs, bs));
        let v = b.input("V", MatrixMeta::dense(j * bs, k * bs, bs));
        let vt = b.transpose(v);
        let mm = b.matmul(u, vt);
        let o = b.binary(x, mm, BinOp::Mul);
        let dag = b.finish(vec![o]);
        let plan = fuseme_fusion::plan::PartialPlan::new(
            [vt.id(), mm.id(), o.id()].into_iter().collect(),
            o.id(),
        );
        let tree = SpaceTree::build(&dag, &plan);
        let model = CostModel {
            nodes: 2,
            tasks_per_node: 2,
            mem_per_task: mem_kb << 10,
            net_bandwidth: 1e8,
            compute_bandwidth: 1e9,
        };
        let res = optimize(&dag, &plan, &tree, &model);
        if res.feasible {
            prop_assert!(res.est.mem_bytes <= model.mem_per_task);
            prop_assert!(res.pqr.p <= i && res.pqr.q <= j && res.pqr.r <= k);
        }
    }

    /// Session outputs stay finite under iterated rebinding for any seed.
    #[test]
    fn rebinding_stays_finite(seed in 0u64..500) {
        let mut s = session();
        s.gen_dense("X", 24, 24, 8, seed).unwrap();
        for _ in 0..3 {
            s.run_and_rebind("Xn = (X + t(X)) * 0.5 + 0.1", &[("X", 0)]).unwrap();
        }
        let v = Arc::clone(s.matrix("X").unwrap());
        prop_assert!(v.to_dense_vec().iter().all(|x| x.is_finite()));
    }
}
