//! The paper's qualitative claims, asserted as tests at laptop scale.
//!
//! These run small versions of the §6 experiments and check the *shape* of
//! the results — who wins, who fails, what the optimizer prefers — rather
//! than absolute numbers. They are the repository's regression harness for
//! "does this still reproduce the paper".

use fuseme::prelude::*;
use fuseme::session::Session;
use fuseme_bench::Scale;
use fuseme_workloads::gnmf::Gnmf;
use fuseme_workloads::nmf::SimpleNmf;

/// A small paper-shaped cluster (s = 1000: block edge 1, grids = paper's).
fn scale() -> Scale {
    Scale::new(1000).unwrap()
}

fn measure_engine(kind: EngineKind, workload: &SimpleNmf, seed: u64) -> RunSummary {
    let cc = scale().paper_cluster();
    let engine = fuseme_bench::build_engine(kind, cc, cc.partition_bytes);
    let dag = workload.dag();
    let binds = workload.generate(seed).unwrap();
    fuseme_bench::measure(&engine, &dag, &binds)
}

/// §6.2 / Fig. 12: the CFO beats SystemDS's operator choice on both time
/// and traffic for the NMF query, and keeps working at sizes where the
/// baselines fail.
#[test]
fn cfo_beats_bfo_rfo_and_survives_larger_inputs() {
    let s = scale();
    // n = 100K point of Fig. 12(a).
    let small = SimpleNmf {
        rows: s.dim(100_000),
        cols: s.dim(100_000),
        k: s.dim(2_000),
        block_size: s.block_size(),
        density: 0.001,
    };
    let fuseme = measure_engine(EngineKind::FuseMe, &small, 1);
    let systemds = measure_engine(EngineKind::SystemDsLike, &small, 1);
    assert_eq!(fuseme.status, RunStatus::Completed);
    assert_eq!(systemds.status, RunStatus::Completed);
    assert!(
        fuseme.sim_secs < systemds.sim_secs,
        "FuseME {:.1}s vs SystemDS {:.1}s",
        fuseme.sim_secs,
        systemds.sim_secs
    );

    // n = 750K point: SystemDS fails, FuseME completes (paper Fig. 12(a)).
    let large = SimpleNmf {
        rows: s.dim(750_000),
        cols: s.dim(750_000),
        k: s.dim(2_000),
        block_size: s.block_size(),
        density: 0.001,
    };
    let fuseme = measure_engine(EngineKind::FuseMe, &large, 2);
    let systemds = measure_engine(EngineKind::SystemDsLike, &large, 2);
    assert_eq!(fuseme.status, RunStatus::Completed, "CFO must survive 750K");
    assert_ne!(
        systemds.status,
        RunStatus::Completed,
        "SystemDS must fail at 750K as in the paper"
    );
}

/// §6.3 / Fig. 13(d): the pruning search returns the exhaustive answer with
/// orders of magnitude fewer evaluations.
#[test]
fn pruning_search_matches_exhaustive_cheaply() {
    use fuseme_fusion::cost::CostModel;
    use fuseme_fusion::optimizer::{optimize, optimize_exhaustive};
    use fuseme_fusion::space::SpaceTree;

    let s = scale();
    let w = SimpleNmf {
        rows: s.dim(500_000),
        cols: s.dim(200_000),
        k: s.dim(5_000),
        block_size: s.block_size(),
        density: 0.01,
    };
    let cc = s.paper_cluster();
    let model = CostModel {
        nodes: cc.nodes,
        tasks_per_node: cc.tasks_per_node,
        mem_per_task: cc.mem_per_task,
        net_bandwidth: cc.net_bandwidth,
        compute_bandwidth: cc.compute_bandwidth,
    };
    let dag = w.dag();
    let plan = {
        let full = Cfg::new(model).plan(&dag);
        full.units
            .iter()
            .find_map(|u| match u {
                ExecUnit::Fused(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap()
    };
    let tree = SpaceTree::build(&dag, &plan);
    let ex = optimize_exhaustive(&dag, &plan, &tree, &model);
    let pr = optimize(&dag, &plan, &tree, &model);
    assert_eq!(ex.pqr, pr.pqr);
    assert!(
        pr.stats.evaluated * 20 < ex.stats.evaluated,
        "pruning {} vs exhaustive {}",
        pr.stats.evaluated,
        ex.stats.evaluated
    );
}

/// §6.3 / Table 3 shape: R grows with the common dimension and collapses to
/// 1 at high density.
#[test]
fn optimizer_r_tracks_common_dimension_and_density() {
    let s = scale();
    let r_for = |k_full: usize, density: f64| -> usize {
        let w = SimpleNmf {
            rows: s.dim(100_000),
            cols: s.dim(100_000),
            k: s.dim(k_full),
            block_size: s.block_size(),
            density,
        };
        let run = measure_engine(EngineKind::FuseMe, &w, 3);
        assert_eq!(run.status, RunStatus::Completed);
        run.pqr[0].3
    };
    let r_small_k = r_for(2_000, 0.2);
    let r_large_k = r_for(50_000, 0.2);
    assert!(
        r_large_k > r_small_k,
        "R must grow with the common dimension: {r_small_k} -> {r_large_k}"
    );
    let r_dense = r_for(2_000, 1.0);
    assert_eq!(r_dense, 1, "dense X makes k-replication unattractive");
}

/// §6.4 / Fig. 14: on GNMF, FuseME fuses more than everyone, communicates
/// less than SystemDS, and is fastest.
#[test]
fn gnmf_fusion_plan_comparison() {
    let g = Gnmf {
        users: 240,
        items: 120,
        factor: 12,
        block_size: 4,
        density: 0.1,
    };
    let cc = {
        let mut cc = ClusterConfig::paper_testbed();
        cc.mem_per_task = 8 << 20;
        cc.stage_overhead_secs = 0.01;
        // Partition size proportional to the toy matrices, so SystemDS's
        // BFO fans out the way it does at the paper's scale instead of
        // degenerating into a single serial (and trivially comm-free) task.
        cc.partition_bytes = 2 << 10;
        cc
    };
    let mut results = Vec::new();
    for engine in [
        Engine::fuseme(cc),
        Engine::systemds_like(cc).with_partition_bytes(2 << 10),
        Engine::distme_like(cc),
        Engine::matfast_like(cc),
    ] {
        let name = engine.kind().name().to_string();
        let mut s = Session::new(engine);
        g.bind_inputs(&mut s, 21).unwrap();
        let report = g.iterate(&mut s).unwrap();
        results.push((name, report.stats));
    }
    let fuseme = &results[0].1;
    let systemds = &results[1].1;
    let distme = &results[2].1;
    assert!(fuseme.fused_units > 0);
    assert_eq!(distme.fused_units, 0, "DistME never fuses");
    assert!(
        fuseme.single_units < systemds.single_units,
        "FuseME leaves fewer operators unfused than SystemDS"
    );
    assert!(
        fuseme.comm.total() <= systemds.comm.total(),
        "FuseME {} vs SystemDS {} bytes",
        fuseme.comm.total(),
        systemds.comm.total()
    );
    assert!(
        fuseme.sim_secs <= results[3].1.sim_secs,
        "FuseME must not lose to MatFast"
    );
}

/// §3.2 / Table 1: measured CFO consolidation equals the model's
/// R·|X| + Q·|U| + P·|V| exactly (communication accounting is exact, not
/// estimated).
#[test]
fn measured_comm_matches_cost_model() {
    use fuseme_exec::fused_op::{execute_fused, ValueMap};
    use fuseme_fusion::cost::{estimate, CostModel};
    use fuseme_fusion::space::SpaceTree;
    use std::sync::Arc;

    let w = SimpleNmf {
        rows: 240,
        cols: 240,
        k: 40,
        block_size: 4,
        density: 1.0, // dense: slice sizes are exactly uniform
    };
    let cc = ClusterConfig::test_small();
    let model = CostModel {
        nodes: cc.nodes,
        tasks_per_node: cc.tasks_per_node,
        mem_per_task: 1 << 30,
        net_bandwidth: cc.net_bandwidth,
        compute_bandwidth: cc.compute_bandwidth,
    };
    let dag = w.dag();
    let binds = w.generate(5).unwrap();
    // The whole query as one fused plan, constructed explicitly so CFG's
    // cost-based splitting cannot change what this test measures.
    let plan = fuseme_fusion::plan::PartialPlan::new(
        dag.nodes()
            .iter()
            .filter(|n| !n.kind.is_leaf())
            .map(|n| n.id)
            .collect(),
        dag.roots()[0],
    );
    let tree = SpaceTree::build(&dag, &plan);
    let values: ValueMap = dag
        .nodes()
        .iter()
        .filter_map(|n| match &n.kind {
            fuseme_plan::OpKind::Input { name } => Some((n.id, Arc::clone(&binds[name]))),
            _ => None,
        })
        .collect();
    for (p, q, r) in [(2, 3, 1), (3, 2, 2), (6, 6, 1)] {
        let cluster = Cluster::new(cc);
        execute_fused(
            &cluster,
            &dag,
            &plan,
            &values,
            &fuseme_exec::Strategy::Cuboid {
                pqr: Pqr { p, q, r },
            },
            &model,
        )
        .unwrap();
        let est = estimate(&dag, &plan, &tree, p, q, r);
        let measured = cluster.comm().consolidation_bytes;
        // The scalar leaf costs 8·R bytes in the model but rides along with
        // task metadata in execution; everything else must match exactly.
        let modeled = est.net_bytes
            - 8 * r as u64
            - if r > 1 {
                // k-aggregation term is charged to the aggregation phase.
                est.net_bytes
                    - (r as u64 * bytes_of(&binds, "X")
                        + q as u64 * bytes_of(&binds, "U")
                        + p as u64 * bytes_of(&binds, "V")
                        + 8 * r as u64)
            } else {
                0
            };
        assert_eq!(measured, modeled, "consolidation mismatch at ({p},{q},{r})");
    }
}

fn bytes_of(binds: &Bindings, name: &str) -> u64 {
    binds[name].actual_size_bytes()
}

/// Eqs. 3–5, pinned: hand-computed `MemEst`/`NetEst`/`ComEst` constants for
/// the paper's running query `O = X * log(U × Vᵀ + eps)` at two fixed
/// `(P,Q,R)` grids. Unlike the formula tests in `fuseme-fusion`, these
/// assert literal numbers derived on paper, so any drift in size or flop
/// accounting — not just in the estimate's structure — fails loudly.
///
/// Fixture: X sparse 60×60 at density 0.5, U and V dense 60×20, block
/// edge 10. Derivation:
///
/// * |X| = |O| = 1800·12 + 60·8 = 22080 B (CSR-ish: nnz·12 + rows·8;
///   O = X ⊙ log(...) inherits min-density 0.5 ⇒ same layout),
/// * |U| = |V| = 1200·8 = 9600 B, |MM| = 3600·8 = 28800 B dense,
/// * gate = density(O)/density(MM) = 0.5 ⇒ gated |MM| = 14400 B,
/// * NetEst = R·|X| + Q·|U| + P·|V| + 8·R + (R−1)·gate·|MM|   (Eq. 4)
/// * MemEst = |U|/(P·R) + |V|/(Q·R) + (|X|+8+|O|)/(P·Q)
///            [+ gate·|MM|/(P·Q) when R>1], floor division per node (Eq. 3)
/// * ComEst = P·numOp(Vᵀ) + R·Σ gated O-ops + gate·numOp(MM)    (Eq. 5)
///   with numOp(Vᵀ) = nnz(V) = 1200; O-ops add/log gated 3600→1800 each,
///   the ⊙ gate 1800 at ratio 1; numOp(MM) = 2·1200·60 = 144000 ⇒ 72000.
#[test]
fn cost_model_matches_hand_computed_goldens() {
    use fuseme_fusion::cost::{estimate, estimate_with_cache, Estimates};
    use fuseme_fusion::space::SpaceTree;
    use std::collections::BTreeSet;

    let mut b = DagBuilder::new();
    let x = b.input("X", MatrixMeta::sparse(60, 60, 10, 0.5));
    let u = b.input("U", MatrixMeta::dense(60, 20, 10));
    let v = b.input("V", MatrixMeta::dense(60, 20, 10));
    let vt = b.transpose(v);
    let mm = b.matmul(u, vt);
    let eps = b.scalar(1e-8);
    let add = b.binary(mm, eps, BinOp::Add);
    let lg = b.unary(add, UnaryOp::Log);
    let out = b.binary(x, lg, BinOp::Mul);
    let dag = b.finish(vec![out]);
    let plan = PartialPlan::new(
        std::collections::BTreeSet::from([vt.id(), mm.id(), add.id(), lg.id(), out.id()]),
        out.id(),
    );
    let tree = SpaceTree::build(&dag, &plan);

    // (P,Q,R) = (2,3,1): no k-axis split, so no aggregation terms.
    //   Net = 22080 + 3·9600 + 2·9600 + 8            = 70088
    //   Mem = 9600/2 + 9600/3 + 22080/6 + 8/6 + 22080/6 = 15361
    //   Com = 2·1200 + 1·(1800+1800+1800) + 72000    = 79800
    assert_eq!(
        estimate(&dag, &plan, &tree, 2, 3, 1),
        Estimates {
            mem_bytes: 15361,
            net_bytes: 70088,
            com_flops: 79800,
        }
    );

    // (P,Q,R) = (3,2,2): R=2 adds (R−1)·14400 net and 14400/6 mem for the
    // k-axis aggregation of the gated main-matmul partials.
    //   Net = 2·22080 + 2·9600 + 3·9600 + 16 + 14400      = 106576
    //   Mem = 9600/6 + 9600/4 + 22080/6 + 8/6 + 22080/6 + 14400/6 = 13761
    //   Com = 3·1200 + 2·(1800+1800+1800) + 72000         = 86400
    assert_eq!(
        estimate(&dag, &plan, &tree, 3, 2, 2),
        Estimates {
            mem_bytes: 13761,
            net_bytes: 106576,
            com_flops: 86400,
        }
    );

    // Cache-aware NetEst: with X's replicas resident, its R·|X| shuffle
    // term vanishes; memory and computation are untouched.
    let cached = BTreeSet::from([x.id()]);
    let warm = estimate_with_cache(&dag, &plan, &tree, 2, 3, 1, &cached);
    assert_eq!(warm.net_bytes, 70088 - 22080);
    assert_eq!(warm.mem_bytes, 15361);
    assert_eq!(warm.com_flops, 79800);
}
