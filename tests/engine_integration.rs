//! Cross-crate integration: every engine, every physical operator, and the
//! reference interpreter must agree on results for a battery of queries,
//! across dense/sparse inputs and cluster shapes.

use std::sync::Arc;

use fuseme::prelude::*;
use fuseme::session::Session;
use fuseme_plan::evaluate;

fn cluster() -> ClusterConfig {
    let mut cc = ClusterConfig::test_small();
    cc.mem_per_task = 256 << 20;
    cc
}

fn engines() -> Vec<Engine> {
    vec![
        Engine::fuseme(cluster()),
        Engine::systemds_like(cluster()),
        Engine::matfast_like(cluster()),
        Engine::distme_like(cluster()),
        Engine::tf_like(cluster()),
    ]
}

/// Queries covering every operator class and fusion template.
fn query_battery() -> Vec<&'static str> {
    vec![
        // Cell fusion (Fig. 2(a)).
        "o = X * U / (V + 1)",
        // Outer fusion (Fig. 2(c)).
        "o = (U %*% t(V)) * X",
        // The running NMF example.
        "o = X * log(U %*% t(V) + 0.001)",
        // Row-fusion shape (Fig. 2(b)): (X × S)ᵀ × X with S thin.
        "o = t(X %*% U) %*% X",
        // Weighted squared loss with aggregation root (Fig. 1(a)).
        "o = sum((X != 0) * (X - U %*% t(V)) ^ 2)",
        // Aggregations of all shapes.
        "o = rowSums(X %*% t(V))",
        "o = colSums((X + 1) * X)",
        "o = max(X %*% t(V))",
        // Chained multiplications (GNMF denominator shape).
        "o = (t(V) %*% V) %*% t(U)",
        // Transposes interleaved with element-wise work.
        "o = t(t(X) * t(X)) + X",
        // Comparison operators.
        "o = (X > 0.5) * U",
        // Scalar on the left.
        "o = 1 - (X != 0)",
        // Deep element-wise chain.
        "o = sqrt(abs(X * U - V * 0.5) + 0.25)",
        // Multiple outputs.
        "a = rowSums(X)\nb = X %*% t(V)\noutput a, b",
    ]
}

fn fresh_session(engine: Engine, seed: u64) -> Session {
    let mut s = Session::new(engine);
    s.gen_sparse("X", 48, 48, 8, 0.15, seed).unwrap();
    s.gen_dense("U", 48, 48, 8, seed + 1).unwrap();
    s.gen_dense("V", 48, 48, 8, seed + 2).unwrap();
    s
}

#[test]
fn all_engines_match_reference_on_battery() {
    for (qi, script) in query_battery().into_iter().enumerate() {
        // Reference result from the single-node interpreter.
        let reference = {
            let s = fresh_session(Engine::fuseme(cluster()), 99);
            let dag = s.compile_script(script).unwrap();
            evaluate(&dag, &s.bindings()).unwrap()
        };
        for engine in engines() {
            let name = engine.kind().name();
            let mut s = fresh_session(engine, 99);
            let report = s
                .run_script(script)
                .unwrap_or_else(|e| panic!("query #{qi} `{script}` on {name}: {e}"));
            assert_eq!(report.outputs.len(), reference.len());
            for (out, want) in report.outputs.iter().zip(&reference) {
                let want = want.as_matrix().unwrap();
                assert!(
                    out.approx_eq(want, 1e-9),
                    "query #{qi} `{script}` diverges on {name}"
                );
            }
        }
    }
}

#[test]
fn results_stable_across_cluster_shapes() {
    let script = "o = X * log(U %*% t(V) + 0.001)";
    let reference = {
        let s = fresh_session(Engine::fuseme(cluster()), 7);
        let dag = s.compile_script(script).unwrap();
        evaluate(&dag, &s.bindings()).unwrap()[0]
            .as_matrix()
            .unwrap()
            .clone()
    };
    for nodes in [1usize, 2, 4, 8] {
        for tasks in [1usize, 3, 12] {
            let mut cc = cluster();
            cc.nodes = nodes;
            cc.tasks_per_node = tasks;
            let mut s = fresh_session(Engine::fuseme(cc), 7);
            let report = s.run_script(script).unwrap();
            assert!(
                report.outputs[0].approx_eq(&reference, 1e-9),
                "diverged at {nodes} nodes × {tasks} tasks"
            );
        }
    }
}

#[test]
fn deterministic_replay() {
    // Two identical runs must produce byte-identical results and identical
    // ledger charges — the simulator's core guarantee.
    let run = || {
        let mut s = fresh_session(Engine::fuseme(cluster()), 3);
        let report = s.run_script("o = (U %*% t(V)) * X + X").unwrap();
        (
            report.outputs[0].to_dense_vec(),
            report.stats.comm.consolidation_bytes,
            report.stats.comm.aggregation_bytes,
            report.stats.sim_secs,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert!((a.3 - b.3).abs() < 1e-12);
}

#[test]
fn tight_memory_prefers_finer_cuboids_not_failure() {
    // FuseME must degrade by partitioning finer, not by failing, as long as
    // any feasible (P,Q,R) exists.
    let script = "o = X * log(U %*% t(V) + 0.001)";
    let loose = {
        let mut s = fresh_session(Engine::fuseme(cluster()), 5);
        s.run_script(script).unwrap().stats.pqr_choices[0].1
    };
    let mut tight_cc = cluster();
    tight_cc.mem_per_task = 200 << 10; // 200 KiB
    let mut s = fresh_session(Engine::fuseme(tight_cc), 5);
    let report = s.run_script(script).unwrap();
    let tight = report.stats.pqr_choices[0].1;
    assert!(
        tight.tasks() >= loose.tasks(),
        "tight budget must not coarsen partitioning: {tight} vs {loose}"
    );
}

#[test]
fn oom_reported_when_nothing_fits() {
    let mut cc = cluster();
    cc.mem_per_task = 256; // nothing fits
    let mut s = fresh_session(Engine::fuseme(cc), 6);
    let err = s.run_script("o = U %*% t(V)").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "got: {msg}");
}

#[test]
fn timeout_reported_on_hopeless_bandwidth() {
    let mut cc = cluster();
    cc.net_bandwidth = 1.0; // 1 byte/sec
    cc.timeout_secs = 60.0;
    let mut s = fresh_session(Engine::fuseme(cc), 8);
    let err = s.run_script("o = U %*% t(V)").unwrap_err();
    assert!(err.to_string().contains("timed out"), "got: {err}");
}

#[test]
fn ledger_conservation_across_engines() {
    // Every engine moves at least each input once for this query (inputs
    // are remote), and FuseME never moves more than DistME (fusion can only
    // remove materialization traffic here).
    let script = "o = X * log(U %*% t(V) + 0.001)";
    let mut totals = Vec::new();
    for engine in [Engine::fuseme(cluster()), Engine::distme_like(cluster())] {
        let name = engine.kind().name().to_string();
        let mut s = fresh_session(engine, 11);
        let input_bytes: u64 = ["X", "U", "V"]
            .iter()
            .map(|n| s.matrix(n).unwrap().actual_size_bytes())
            .sum();
        let report = s.run_script(script).unwrap();
        assert!(
            report.stats.comm.total() >= input_bytes,
            "{name} moved less than one copy of the inputs"
        );
        totals.push(report.stats.comm.total());
    }
    assert!(
        totals[0] <= totals[1],
        "FuseME {} > DistME {}",
        totals[0],
        totals[1]
    );
}

#[test]
fn iterative_session_reuses_outputs_without_recompute_errors() {
    let mut s = fresh_session(Engine::fuseme(cluster()), 13);
    // Chain outputs through rebinding ten times; values must stay finite.
    for i in 0..10 {
        let report = s
            .run_and_rebind("Xn = (X + t(X)) * 0.5", &[("X", 0)])
            .unwrap();
        let v = report.outputs[0].to_dense_vec();
        assert!(
            v.iter().all(|x| x.is_finite()),
            "non-finite value at iteration {i}"
        );
    }
    // X is now symmetric.
    let x = Arc::clone(s.matrix("X").unwrap());
    for r in 0..48 {
        for c in 0..48 {
            let a = x.get(r, c).unwrap();
            let b = x.get(c, r).unwrap();
            assert!((a - b).abs() < 1e-9);
        }
    }
}
