//! Differential tests: the optimized paths must be *behavior-preserving*.
//!
//! Three axes of the engine claim to change only cost, never results:
//!
//! 1. **Fusion** — a CFO-fused plan vs the same DAG run one operator per
//!    unit must agree element-wise (§3: fusion rearranges execution, not
//!    arithmetic).
//! 2. **The replica cache** — a cache hit skips a shuffle that would have
//!    delivered byte-identical replicas, so cached runs must produce
//!    *exactly* the same numbers, and a cold cache-armed run must be
//!    byte-identical to a cache-off run even in its accounting.
//! 3. **Fault recovery** — retried work re-ships the same bytes, so the
//!    communication ledger must reconcile exactly against a fault-free
//!    oracle: `ledger == oracle + wasted`, with or without the cache.
//!
//! Each test diffs two executions that should be equivalent and fails on
//! the first observable divergence.

use std::sync::Arc;

use fuseme::prelude::*;
use fuseme::session::Session;
use fuseme_workloads::als::AlsLoss;
use fuseme_workloads::autoencoder::AutoEncoder;
use fuseme_workloads::gnmf::Gnmf;
use fuseme_workloads::nmf::SimpleNmf;
use fuseme_workloads::pca::Pca;

fn cluster() -> ClusterConfig {
    let mut cc = ClusterConfig::test_small();
    cc.mem_per_task = 256 << 20;
    cc
}

fn gnmf() -> Gnmf {
    Gnmf {
        users: 80,
        items: 80,
        factor: 5,
        block_size: 10,
        density: 0.5,
    }
}

/// Densifies every binding: same values block by block, dense blocks
/// everywhere, and metadata declaring full density — so both the planner
/// and the kernels are forced down the dense path.
fn densify_bindings(binds: &Bindings) -> Bindings {
    binds
        .iter()
        .map(|(name, m)| {
            let meta = MatrixMeta::dense(m.shape().rows, m.shape().cols, m.meta().block_size);
            let dense = BlockedMatrix::from_fn(meta, |bi, bj| {
                Some(Block::Dense(m.block_or_zero(bi, bj).to_dense()))
            })
            .expect("densify preserves geometry");
            (name.clone(), Arc::new(dense))
        })
        .collect()
}

/// Asserts two output sets agree element-wise within `tol`.
fn assert_outputs_close(name: &str, a: &[Arc<BlockedMatrix>], b: &[Arc<BlockedMatrix>], tol: f64) {
    assert_eq!(a.len(), b.len(), "{name}: output arity differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.shape(), y.shape(), "{name}: output #{i} shape differs");
        let (xv, yv) = (x.to_dense_vec(), y.to_dense_vec());
        let worst = xv
            .iter()
            .zip(&yv)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst <= tol,
            "{name}: output #{i} diverges by {worst:e} (tol {tol:e})"
        );
    }
}

/// Every workload script, compiled against small bound inputs: the fused
/// CFO plan and the fully unfused plan (every operator its own unit) must
/// produce element-wise equal outputs within 1e-9.
#[test]
fn fused_and_unfused_agree_on_every_workload() {
    // (name, dag, bindings) triples, workload by workload.
    let mut cases: Vec<(String, QueryDag, Bindings)> = Vec::new();

    let nmf = SimpleNmf {
        rows: 60,
        cols: 60,
        k: 10,
        block_size: 10,
        density: 0.3,
    };
    cases.push(("NMF".into(), nmf.dag(), nmf.generate(7).unwrap()));

    let mut from_session = |name: &str, scripts: Vec<String>, bind: &dyn Fn(&mut Session)| {
        let mut s = Session::new(Engine::fuseme(cluster()));
        bind(&mut s);
        for (i, script) in scripts.iter().enumerate() {
            let dag = s.compile_script(script).expect("compile");
            cases.push((format!("{name}#{i}"), dag, s.bindings()));
        }
    };

    let g = gnmf();
    from_session("GNMF update", vec![Gnmf::update_script().into()], &|s| {
        g.bind_inputs(s, 13).unwrap()
    });

    let als = AlsLoss {
        rows: 40,
        cols: 40,
        k: 8,
        block_size: 8,
        density: 0.2,
    };
    from_session(
        "ALS",
        vec![
            AlsLoss::loss_script().into(),
            AlsLoss::prediction_script().into(),
        ],
        &|s| als.bind_inputs(s, 13).unwrap(),
    );

    let pca = Pca {
        n: 40,
        d: 20,
        sketch: 5,
        block_size: 10,
    };
    from_session(
        "PCA",
        vec![Pca::row_pattern_script().into(), pca.covariance_script()],
        &|s| pca.bind_inputs(s, 3).unwrap(),
    );

    let ae = AutoEncoder {
        inputs: 32,
        features: 30,
        h1: 20,
        h2: 10,
        batch: 16,
        block_size: 10,
        lr: 0.1,
    };
    from_session("AutoEncoder step", vec![ae.step_script()], &|s| {
        ae.bind_inputs(s, 5).unwrap()
    });

    let mut fused_units_seen = 0;
    for (name, dag, binds) in &cases {
        let engine = Engine::fuseme(cluster());
        let fused_plan = engine.plan(dag);
        let unfused_plan = FusionPlan::assemble(dag, vec![]);
        let fused = engine.run_plan(dag, &fused_plan, binds).expect("fused run");
        let unfused = engine
            .run_plan(dag, &unfused_plan, binds)
            .expect("unfused run");
        fused_units_seen += fused.stats.fused_units;
        assert_eq!(unfused.stats.fused_units, 0, "{name}: unfused plan fused");
        assert_outputs_close(name, &fused.outputs, &unfused.outputs, 1e-9);
    }
    // The diff only means something if fusion actually happened somewhere.
    assert!(fused_units_seen > 0, "no case exercised a fused unit");
}

/// The sparse execution path — CSR inputs kept sparse through Gustavson
/// SpGEMM, sparse-output kernels, and re-compaction at the consolidation
/// boundary — must be element-wise equal to the forced-dense path on every
/// workload script, at densities low enough that the sparse kernels
/// actually engage. On the workloads whose rating matrix *is* sparse, the
/// sparse path must also move strictly fewer shuffled bytes.
#[test]
fn sparse_path_matches_forced_dense_path_on_every_workload() {
    // (name, script, bindings, expect_savings) — densities at 0.05 so the
    // nnz upper bound drops below the sparse-output threshold.
    let mut cases: Vec<(String, String, Bindings, bool)> = Vec::new();

    let nmf = SimpleNmf {
        rows: 60,
        cols: 60,
        k: 10,
        block_size: 10,
        density: 0.05,
    };
    cases.push((
        "NMF".into(),
        SimpleNmf::script().into(),
        nmf.generate(7).unwrap(),
        true,
    ));

    let mut from_session =
        |name: &str, scripts: Vec<String>, bind: &dyn Fn(&mut Session), expect_savings: bool| {
            let mut s = Session::new(Engine::fuseme(cluster()));
            bind(&mut s);
            for (i, script) in scripts.into_iter().enumerate() {
                cases.push((format!("{name}#{i}"), script, s.bindings(), expect_savings));
            }
        };

    let g = Gnmf {
        density: 0.05,
        ..gnmf()
    };
    from_session(
        "GNMF update",
        vec![Gnmf::update_script().into()],
        &|s| g.bind_inputs(s, 13).unwrap(),
        true,
    );

    let als = AlsLoss {
        rows: 40,
        cols: 40,
        k: 8,
        block_size: 8,
        density: 0.05,
    };
    from_session(
        "ALS",
        vec![
            AlsLoss::loss_script().into(),
            AlsLoss::prediction_script().into(),
        ],
        &|s| als.bind_inputs(s, 13).unwrap(),
        true,
    );

    // Dense workloads ride along as controls: densification is a semantic
    // no-op for them, and no byte savings are claimed.
    let pca = Pca {
        n: 40,
        d: 20,
        sketch: 5,
        block_size: 10,
    };
    from_session(
        "PCA",
        vec![Pca::row_pattern_script().into(), pca.covariance_script()],
        &|s| pca.bind_inputs(s, 3).unwrap(),
        false,
    );

    let ae = AutoEncoder {
        inputs: 32,
        features: 30,
        h1: 20,
        h2: 10,
        batch: 16,
        block_size: 10,
        lr: 0.1,
    };
    from_session(
        "AutoEncoder step",
        vec![ae.step_script()],
        &|s| ae.bind_inputs(s, 5).unwrap(),
        false,
    );

    for (name, script, binds, expect_savings) in &cases {
        let run = |binds: &Bindings| {
            let mut s = Session::new(Engine::fuseme(cluster()));
            for (n, m) in binds {
                s.bind_shared(n, Arc::clone(m));
            }
            let report = s.run_script(script).expect("run must complete");
            (report.outputs, s.engine().cluster().comm().total())
        };
        let (sparse_out, sparse_comm) = run(binds);
        let (dense_out, dense_comm) = run(&densify_bindings(binds));
        assert_outputs_close(name, &sparse_out, &dense_out, 1e-9);
        if *expect_savings {
            assert!(
                sparse_comm < dense_comm,
                "{name}: sparse path must ship strictly fewer bytes \
                 ({sparse_comm} B vs {dense_comm} B)"
            );
        }
    }
}

/// Builds the comparable accounting record of one multi-iteration GNMF
/// run: the summary (wall-clock zeroed — the only legitimately
/// nondeterministic field) plus every iteration's `(P,Q,R)` choices.
fn gnmf_run_of(
    g: Gnmf,
    cache_budget: Option<u64>,
    fault_plan: Option<FaultPlan>,
    iters: usize,
) -> RunSummary {
    let mut s = Session::new(Engine::fuseme(cluster()));
    s.set_replica_cache(cache_budget);
    s.set_fault_tolerance(FaultToleranceConfig::resilient());
    s.set_fault_plan(fault_plan);
    g.bind_inputs(&mut s, 13).expect("generate inputs");
    let mut pqr_choices = Vec::new();
    for _ in 0..iters {
        let report = g.iterate(&mut s).expect("iteration must complete");
        pqr_choices.extend(report.stats.pqr_choices);
    }
    let cluster = s.engine().cluster();
    let stats = fuseme_exec::driver::EngineStats {
        comm: cluster.comm(),
        sim_secs: cluster.elapsed_secs(),
        wall_secs: 0.0,
        pqr_choices,
        faults: s.fault_stats(),
        cache: s.cache_stats(),
        ..fuseme_exec::driver::EngineStats::default()
    };
    RunSummary::completed("FuseME", &stats)
}

/// [`gnmf_run_of`] on the default half-dense fixture.
fn gnmf_run(cache_budget: Option<u64>, fault_plan: Option<FaultPlan>, iters: usize) -> RunSummary {
    gnmf_run_of(gnmf(), cache_budget, fault_plan, iters)
}

/// A *cold* cache-armed run — first iteration, nothing resident yet — must
/// be byte-identical to a cache-off run: same traffic, same simulated
/// time, same `(P,Q,R)` choices, down to the serialized summary. The only
/// permitted difference is the cache record itself, which must show pure
/// misses: zero hits, zero saved bytes.
#[test]
fn cold_cache_run_is_byte_identical_to_cache_off() {
    let off = gnmf_run(None, None, 1);
    let mut cold = gnmf_run(Some(1 << 30), None, 1);

    assert!(
        off.cache.is_none(),
        "cache-off run must carry no cache record"
    );
    let c = cold.cache.take().expect("cold run admits replicas");
    assert_eq!(c.hits, 0, "a cold cache cannot hit");
    assert_eq!(c.saved_bytes, 0, "a cold cache cannot save bytes");
    assert!(c.misses > 0, "a cold run must at least admit replicas");

    // With the cache record stripped, the summaries serialize identically.
    let off_json = serde_json::to_string(&off).unwrap();
    let cold_json = serde_json::to_string(&cold).unwrap();
    assert_eq!(
        off_json, cold_json,
        "cold cache-armed run diverged from cache-off"
    );
}

/// Warm or cold, the cache must never change results: five GNMF iterations
/// with the cache on and off produce bitwise-equal factors (the cache
/// skips shuffles of byte-identical replicas, so not even an epsilon of
/// drift is acceptable), while the cached run ships strictly fewer bytes.
#[test]
fn cache_posture_never_changes_results() {
    let g = gnmf();
    let run = |budget: Option<u64>| {
        let mut s = Session::new(Engine::fuseme(cluster()));
        s.set_replica_cache(budget);
        g.bind_inputs(&mut s, 13).expect("generate inputs");
        for _ in 0..5 {
            g.iterate(&mut s).expect("iteration");
        }
        let comm = s.engine().cluster().comm().total();
        let u = s.matrix("U").unwrap().to_dense_vec();
        let v = s.matrix("V").unwrap().to_dense_vec();
        (u, v, comm)
    };
    let (u_off, v_off, comm_off) = run(None);
    let (u_on, v_on, comm_on) = run(Some(1 << 30));
    assert_eq!(u_off, u_on, "cache changed U");
    assert_eq!(v_off, v_on, "cache changed V");
    assert!(
        comm_on < comm_off,
        "warm cache must ship fewer bytes ({comm_on} vs {comm_off})"
    );
}

/// Under injected task crashes and stragglers, the communication ledger
/// reconciles exactly against the fault-free oracle — `ledger == oracle +
/// wasted` — in *both* cache postures. (Cache discounts apply when a
/// task's costs are declared, before fault injection, so a retried
/// attempt re-ships exactly what its failed twin shipped.)
#[test]
fn ledger_reconciles_against_oracle_in_both_cache_postures() {
    let faults = || {
        Some(
            FaultPlan::new(0xD1FF)
                .with_crash_rate(0.2)
                .with_straggler_rate(0.2, 4.0),
        )
    };
    for (posture, budget) in [("cache-off", None), ("cache-on", Some(1u64 << 30))] {
        let oracle = gnmf_run(budget, None, 2);
        let faulted = gnmf_run(budget, faults(), 2);
        assert_eq!(oracle.status, RunStatus::Completed);
        assert_eq!(faulted.status, RunStatus::Completed);
        let f = faulted.faults.expect("fault plan must cause recovery work");
        assert!(f.retries > 0, "{posture}: no retry ever fired");
        assert!(oracle.faults.is_none(), "{posture}: oracle saw faults");
        // Fault injection never changes planning.
        assert_eq!(oracle.pqr, faulted.pqr, "{posture}: faults changed (P,Q,R)");
        assert_eq!(
            faulted.comm_total(),
            oracle.comm_total() + f.wasted_bytes,
            "{posture}: ledger must equal oracle + wasted"
        );
        // And recovery never changes the cache's effectiveness either: the
        // saved bytes match the oracle's exactly.
        assert_eq!(
            oracle.cache.map(|c| c.saved_bytes),
            faulted.cache.map(|c| c.saved_bytes),
            "{posture}: recovery changed cache savings"
        );
    }
}

/// The same reconciliation must hold when the intermediates are *sparse*:
/// at density 0.05 the rating matrix stays CSR through consolidation and
/// Gustavson SpGEMM, so retried work re-ships CSR-sized replicas — and the
/// ledger must still equal `oracle + wasted` to the byte, in both cache
/// postures.
#[test]
fn ledger_reconciles_with_sparse_intermediates() {
    let g = Gnmf {
        density: 0.05,
        ..gnmf()
    };
    let faults = || {
        Some(
            FaultPlan::new(0xD1FF)
                .with_crash_rate(0.2)
                .with_straggler_rate(0.2, 4.0),
        )
    };
    for (posture, budget) in [("cache-off", None), ("cache-on", Some(1u64 << 30))] {
        let oracle = gnmf_run_of(g, budget, None, 2);
        let faulted = gnmf_run_of(g, budget, faults(), 2);
        assert_eq!(oracle.status, RunStatus::Completed);
        assert_eq!(faulted.status, RunStatus::Completed);
        let f = faulted.faults.expect("fault plan must cause recovery work");
        assert!(f.retries > 0, "{posture}: no retry ever fired");
        assert_eq!(oracle.pqr, faulted.pqr, "{posture}: faults changed (P,Q,R)");
        assert_eq!(
            faulted.comm_total(),
            oracle.comm_total() + f.wasted_bytes,
            "{posture}: sparse-intermediate ledger must equal oracle + wasted"
        );
        assert_eq!(
            oracle.cache.map(|c| c.saved_bytes),
            faulted.cache.map(|c| c.saved_bytes),
            "{posture}: recovery changed cache savings"
        );
    }
}
